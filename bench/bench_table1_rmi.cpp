// Table 1 reproduction — RMI cost, plain runtime vs DGC-extended.
//
// Paper setup: client and server co-located (no network latency masking),
// series of 10/100/500/1000 remote invocations of a method with 10
// arguments, each exporting/importing 10 fresh references, forcing the DGC
// to create 10 scions and stubs per call. Paper result (Rotor): 7%-21%
// overhead.
//
// Here: two simulated processes, zero-latency-ish network, wall-clock time
// of driving the invocation series through the runtime with the DGC hooks
// disabled (plain remoting) vs enabled (scion/stub creation, invocation
// counters, reference-listing bookkeeping). Absolute times are meaningless
// (simulated substrate); the *relative overhead column* is the reproduction
// target.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/rt/threaded_runtime.h"

namespace adgc {
namespace {

RuntimeConfig rmi_config(bool dgc) {
  RuntimeConfig cfg = sim::manual_config(1234);
  cfg.net.min_latency_us = 1;
  cfg.net.mean_latency_us = 2;
  cfg.proc.dgc_enabled = dgc;
  cfg.proc.dcda_enabled = dgc;
  return cfg;
}

/// Runs `calls` invocations, each exporting 10 fresh references, and
/// returns the wall time in ms. `lgc_every == 0` disables periodic local
/// GC during the series (the paper's Table 1 isolates stub/scion creation,
/// which "cannot be fulfilled lazily"; their series does not interleave
/// collections).
double run_series(int calls, bool dgc, int lgc_every = 0, bool obs = true) {
  RuntimeConfig cfg = rmi_config(dgc);
  // The obs-off leg of the observability-overhead extension: same switch
  // adgc_node exposes (trace_ring_capacity = 0 disables event stamping;
  // histogram recording is unconditional and thus paid by both legs).
  if (!obs) cfg.proc.trace_ring_capacity = 0;
  Runtime rt(2, cfg);
  const ObjectId client{0, rt.proc(0).create_object()};
  const ObjectId server{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(client.seq);
  rt.proc(1).add_root(server.seq);
  const RefId ref = rt.link(client, server);
  rt.run_for(10'000);

  bench::Stopwatch sw;
  for (int i = 0; i < calls; ++i) {
    std::vector<ArgRef> args;
    args.reserve(10);
    for (int a = 0; a < 10; ++a) {
      const ObjectSeq obj = rt.proc(0).create_object();
      rt.proc(0).add_root(obj);  // stays referenced at the caller, as in RMI
      args.push_back(ArgRef::own(obj));
    }
    // 4 KiB of marshalled by-value data per call: real remoting spends its
    // time on argument serialization, which both configurations pay alike
    // (the paper's baseline includes full remoting costs).
    rt.proc(0).invoke(client.seq, ref, InvokeEffect::kStoreArgs, std::move(args),
                      /*want_reply=*/true, /*payload_bytes=*/4096);
    rt.run_for(1'000);
    if (lgc_every > 0 && (i + 1) % lgc_every == 0) {
      // Both configurations run their local GC (Rotor's baseline has one
      // too); the DGC-extended one additionally pays the reference-listing
      // keep-up (stub recomputation + NewSetStubs).
      rt.proc(0).run_lgc();
      rt.proc(1).run_lgc();
      rt.run_for(1'000);
    }
  }
  rt.run_for(10'000);
  return sw.ms();
}

/// Wire-cost series: how many transport messages one RMI costs when its
/// control-plane traffic (AddScion acks here) is batched vs sent one
/// message each. Three processes: client P0 invokes server P1, passing 10
/// references it holds into owner P2 — every call runs 10 scion-first
/// handshakes, so the owner's ack stream is exactly the traffic the
/// batcher coalesces. Counts are deterministic (seeded simulation).
struct WireCost {
  double msgs_per_rmi = 0;
  double p50_burst_drain_us = 0;
};

WireCost run_wire_series(int bursts, int burst_size, bool batching) {
  RuntimeConfig cfg = rmi_config(true);
  cfg.proc.batching_enabled = batching;
  Runtime rt(3, cfg);
  const ObjectId client{0, rt.proc(0).create_object()};
  const ObjectId server{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(client.seq);
  rt.proc(1).add_root(server.seq);
  const RefId call_ref = rt.link(client, server);

  // P2 exports 10 objects to the client; the client re-exports them on
  // every call (third-party export → AddScion to P2 → ack back).
  std::vector<RefId> held;
  for (int i = 0; i < 10; ++i) {
    const ObjectSeq obj = rt.proc(2).create_object();
    rt.proc(2).add_root(obj);
    const ExportedRef er = rt.proc(2).export_own_object(obj, 0);
    held.push_back(rt.proc(0).install_ref(client.seq, er));
  }
  rt.run_for(10'000);

  const std::uint64_t msgs_before = rt.net_metrics().messages_sent.get();
  std::uint64_t expected_replies = rt.total_metrics().replies_received.get();
  std::vector<double> drain_us;
  drain_us.reserve(static_cast<std::size_t>(bursts));
  for (int b = 0; b < bursts; ++b) {
    const SimTime start = rt.proc(0).now();
    for (int i = 0; i < burst_size; ++i) {
      std::vector<ArgRef> args;
      args.reserve(held.size());
      for (const RefId r : held) args.push_back(ArgRef::held(r));
      rt.proc(0).invoke(client.seq, call_ref, InvokeEffect::kTouch, std::move(args));
    }
    expected_replies += static_cast<std::uint64_t>(burst_size);
    // Drain the burst: every invoke has completed its handshakes, crossed
    // the wire and been answered.
    SimTime guard = 0;
    while (rt.total_metrics().replies_received.get() < expected_replies &&
           guard < 5'000'000) {
      rt.run_for(50);
      guard += 50;
    }
    drain_us.push_back(static_cast<double>(rt.proc(0).now() - start));
  }
  const std::uint64_t msgs = rt.net_metrics().messages_sent.get() - msgs_before;

  WireCost out;
  out.msgs_per_rmi =
      static_cast<double>(msgs) / (static_cast<double>(bursts) * burst_size);
  std::sort(drain_us.begin(), drain_us.end());
  out.p50_burst_drain_us = drain_us[drain_us.size() / 2];
  return out;
}

/// Mutator-visible snapshot cost, asynchronous pipeline on vs off. Runs on
/// the ThreadedRuntime — the deterministic sim executes the pipeline stages
/// inline at request time (only publication is deferred), so only a real
/// background worker can show the win. The off leg blocks the actor thread
/// for the whole capture→serialize→persist→summarize pass (take_snapshot);
/// the on leg pays capture + hand-off only (request_snapshot). Each request
/// waits for its publish before the next one, so both legs run the same
/// number of full passes — identical store writes and summarizations, only
/// *where* the stages run differs.
struct SnapshotCost {
  double sync_us = 0;        // actor-blocked µs per snapshot (mutator-visible)
  double summarizations = 0; // full passes that published (completeness check)
  double persist_failures = 0;
};

SnapshotCost run_snapshot_series(int snapshots, bool pipeline) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("adgc_bench_snap_") + (pipeline ? "on" : "off"));
  fs::remove_all(dir);

  RuntimeConfig cfg;
  cfg.seed = 99;
  cfg.proc.periodic_collectors_enabled = false;  // snapshots driven by hand
  cfg.proc.snapshot_pipeline = pipeline;
  cfg.proc.snapshot_dir = dir.string();
  ThreadedRuntime rt(2, cfg);

  // A heap worth snapshotting: a payload-carrying spine plus a block of
  // remote references, so serialization, the store write and summarization
  // all have real work to move off the mutator path.
  std::vector<ExportedRef> exported(64);
  rt.post_sync(1, [&](Process& p) {
    for (auto& er : exported) {
      const ObjectSeq obj = p.create_object();
      p.add_root(obj);
      er = p.export_own_object(obj, 0);
    }
  });
  rt.post_sync(0, [&](Process& p) {
    ObjectSeq prev = kNoObject;
    for (int i = 0; i < 4000; ++i) {
      const ObjectSeq obj = p.create_object(/*payload_bytes=*/256);
      if (i % 16 == 0) p.add_root(obj);
      if (prev != kNoObject) p.add_local_ref(prev, obj);
      prev = obj;
    }
    const ObjectSeq holder = p.create_object();
    p.add_root(holder);
    for (const ExportedRef& er : exported) p.install_ref(holder, er);
  });

  const auto version = [&] {
    std::uint64_t v = 0;
    rt.post_sync(0, [&](Process& p) {
      if (auto s = p.current_summary()) v = s->version;
    });
    return v;
  };

  // One synchronous pass outside the window warms the store directory and
  // the incremental summarizer's memo for both legs alike.
  rt.post_sync(0, [](Process& p) { p.take_snapshot(); });

  double blocked_us = 0;
  for (int i = 0; i < snapshots; ++i) {
    // Mutate a little between passes (untimed), as a live mutator would.
    rt.post_sync(0, [&](Process& p) {
      const ObjectSeq obj = p.create_object(/*payload_bytes=*/128);
      p.add_root(obj);
    });
    rt.post_sync(0, [&](Process& p) {
      const auto t0 = std::chrono::steady_clock::now();
      if (pipeline) {
        p.request_snapshot();
      } else {
        p.take_snapshot();
      }
      blocked_us += std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    });
    // Await the publish so the on leg never coalesces.
    const std::uint64_t want = static_cast<std::uint64_t>(i) + 2;  // +warm pass
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (version() < want) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "snapshot %d never published (pipeline=%d)\n", i,
                     pipeline);
        rt.shutdown();
        fs::remove_all(dir);
        return {};
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const Metrics m = rt.total_metrics();
  SnapshotCost out;
  out.sync_us = blocked_us / snapshots;
  out.summarizations = static_cast<double>(m.summarizations.get());
  out.persist_failures = static_cast<double>(m.snapshot_persist_failures.get());
  rt.shutdown();
  fs::remove_all(dir);
  return out;
}

void BM_RmiSeries(benchmark::State& state) {
  const int calls = static_cast<int>(state.range(0));
  const bool dgc = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_series(calls, dgc));
  }
}
BENCHMARK(BM_RmiSeries)
    ->ArgsProduct({{10, 100}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::JsonReport report("table1_rmi");
  bench::header(
      "Table 1 — RMI series cost: plain runtime vs DGC-extended\n"
      "(paper: Rotor vs Rotor w/ DGC; 10 refs exported per call;\n"
      " paper overhead 7.19% / 18.64% / 20.73% / 17.92%)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {10, 100, 500, 1000}) {
    // Warm, then take the best of 5 to de-noise.
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      base = std::min(base, run_series(calls, false));
      dgc = std::min(dgc, run_series(calls, true));
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("rmi_series", {{"calls", static_cast<double>(calls)},
                              {"plain_ms", base},
                              {"dgc_ms", dgc},
                              {"overhead_pct", overhead}});
  }

  bench::header(
      "Extension — same series with reference-listing keep-up interleaved\n"
      "(local GC + NewSetStubs every 50 calls in BOTH configurations; the\n"
      " paper defers this cost outside its Table 1 measurement window)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {100, 500, 1000}) {
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      base = std::min(base, run_series(calls, false, 50));
      dgc = std::min(dgc, run_series(calls, true, 50));
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("rmi_series_with_keepup", {{"calls", static_cast<double>(calls)},
                                          {"plain_ms", base},
                                          {"dgc_ms", dgc},
                                          {"overhead_pct", overhead}});
  }

  bench::header(
      "Extension — observability overhead: trace-ring event stamping on vs off\n"
      "(trace_ring_capacity 4096 vs 0, DGC-extended series; histograms record\n"
      " in both legs; bench_diff gates obs_overhead_pct at 5%)");
  std::printf("%-12s %16s %16s %12s\n", "# RMI calls", "obs off (ms)", "obs on (ms)",
              "overhead");
  for (int calls : {100, 1000}) {
    double off = 1e100, on = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      off = std::min(off, run_series(calls, true, 0, /*obs=*/false));
      on = std::min(on, run_series(calls, true, 0, /*obs=*/true));
    }
    const double overhead = (on - off) / off * 100.0;
    std::printf("%-12d %16.2f %16.2f %11.2f%%\n", calls, off, on, overhead);
    report.add("rmi_series_obs", {{"calls", static_cast<double>(calls)},
                                  {"obs_off_ms", off},
                                  {"obs_on_ms", on},
                                  {"obs_overhead_pct", overhead}});
  }

  bench::header(
      "Extension — transport messages per RMI, control-plane batching on/off\n"
      "(each call re-exports 10 held references: 10 AddScion handshakes\n"
      " whose acks are the batchable traffic; counts are deterministic)");
  std::printf("%-10s %14s %20s\n", "batching", "msgs/RMI", "p50 burst drain (us)");
  const int kBursts = 30, kBurstSize = 16;
  const WireCost off = run_wire_series(kBursts, kBurstSize, false);
  const WireCost on = run_wire_series(kBursts, kBurstSize, true);
  const double reduction = (off.msgs_per_rmi - on.msgs_per_rmi) / off.msgs_per_rmi * 100.0;
  const double p50_ratio = on.p50_burst_drain_us / off.p50_burst_drain_us;
  std::printf("%-10s %14.2f %20.0f\n", "off", off.msgs_per_rmi, off.p50_burst_drain_us);
  std::printf("%-10s %14.2f %20.0f\n", "on", on.msgs_per_rmi, on.p50_burst_drain_us);
  std::printf("message reduction: %.1f%%   p50 drain ratio (on/off): %.3f\n",
              reduction, p50_ratio);
  report.add("wire_cost", {{"batching", 0.0},
                           {"msgs_per_rmi", off.msgs_per_rmi},
                           {"p50_burst_drain_us", off.p50_burst_drain_us}});
  report.add("wire_cost", {{"batching", 1.0},
                           {"msgs_per_rmi", on.msgs_per_rmi},
                           {"p50_burst_drain_us", on.p50_burst_drain_us}});
  report.add("wire_cost_summary",
             {{"reduction_pct", reduction}, {"p50_ratio", p50_ratio}});

  bench::header(
      "Extension — mutator-visible snapshot cost, async pipeline on/off\n"
      "(threaded runtime, 4k-object heap persisted to disk; the off leg\n"
      " blocks the actor for the full pass, the on leg for capture only;\n"
      " bench_diff gates snapshot_sync_speedup at >= 5x)");
  const int kSnapshots = 25;
  const SnapshotCost sync_leg = run_snapshot_series(kSnapshots, false);
  const SnapshotCost pipe_leg = run_snapshot_series(kSnapshots, true);
  if (sync_leg.sync_us <= 0 || pipe_leg.sync_us <= 0) {
    std::printf("snapshot pipeline series FAILED\n");
    return 1;
  }
  const double speedup = sync_leg.sync_us / pipe_leg.sync_us;
  std::printf("%-10s %22s %16s %18s\n", "pipeline", "actor-blocked (us)",
              "summarizations", "persist failures");
  std::printf("%-10s %22.1f %16.0f %18.0f\n", "off", sync_leg.sync_us,
              sync_leg.summarizations, sync_leg.persist_failures);
  std::printf("%-10s %22.1f %16.0f %18.0f\n", "on", pipe_leg.sync_us,
              pipe_leg.summarizations, pipe_leg.persist_failures);
  std::printf("mutator-visible speedup (off/on): %.2fx\n", speedup);
  report.add("snapshot_pipeline", {{"pipeline", 0.0},
                                   {"snapshots", static_cast<double>(kSnapshots)},
                                   {"snapshot_sync_us", sync_leg.sync_us},
                                   {"summarizations", sync_leg.summarizations},
                                   {"persist_failures", sync_leg.persist_failures}});
  report.add("snapshot_pipeline", {{"pipeline", 1.0},
                                   {"snapshots", static_cast<double>(kSnapshots)},
                                   {"snapshot_sync_us", pipe_leg.sync_us},
                                   {"summarizations", pipe_leg.summarizations},
                                   {"persist_failures", pipe_leg.persist_failures}});
  report.add("snapshot_pipeline_summary", {{"snapshot_sync_speedup", speedup}});
  return 0;
}
