// Table 1 reproduction — RMI cost, plain runtime vs DGC-extended.
//
// Paper setup: client and server co-located (no network latency masking),
// series of 10/100/500/1000 remote invocations of a method with 10
// arguments, each exporting/importing 10 fresh references, forcing the DGC
// to create 10 scions and stubs per call. Paper result (Rotor): 7%-21%
// overhead.
//
// Here: two simulated processes, zero-latency-ish network, wall-clock time
// of driving the invocation series through the runtime with the DGC hooks
// disabled (plain remoting) vs enabled (scion/stub creation, invocation
// counters, reference-listing bookkeeping). Absolute times are meaningless
// (simulated substrate); the *relative overhead column* is the reproduction
// target.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.h"

namespace adgc {
namespace {

RuntimeConfig rmi_config(bool dgc) {
  RuntimeConfig cfg = sim::manual_config(1234);
  cfg.net.min_latency_us = 1;
  cfg.net.mean_latency_us = 2;
  cfg.proc.dgc_enabled = dgc;
  cfg.proc.dcda_enabled = dgc;
  return cfg;
}

/// Runs `calls` invocations, each exporting 10 fresh references, and
/// returns the wall time in ms. `lgc_every == 0` disables periodic local
/// GC during the series (the paper's Table 1 isolates stub/scion creation,
/// which "cannot be fulfilled lazily"; their series does not interleave
/// collections).
double run_series(int calls, bool dgc, int lgc_every = 0) {
  Runtime rt(2, rmi_config(dgc));
  const ObjectId client{0, rt.proc(0).create_object()};
  const ObjectId server{1, rt.proc(1).create_object()};
  rt.proc(0).add_root(client.seq);
  rt.proc(1).add_root(server.seq);
  const RefId ref = rt.link(client, server);
  rt.run_for(10'000);

  bench::Stopwatch sw;
  for (int i = 0; i < calls; ++i) {
    std::vector<ArgRef> args;
    args.reserve(10);
    for (int a = 0; a < 10; ++a) {
      const ObjectSeq obj = rt.proc(0).create_object();
      rt.proc(0).add_root(obj);  // stays referenced at the caller, as in RMI
      args.push_back(ArgRef::own(obj));
    }
    // 4 KiB of marshalled by-value data per call: real remoting spends its
    // time on argument serialization, which both configurations pay alike
    // (the paper's baseline includes full remoting costs).
    rt.proc(0).invoke(client.seq, ref, InvokeEffect::kStoreArgs, std::move(args),
                      /*want_reply=*/true, /*payload_bytes=*/4096);
    rt.run_for(1'000);
    if (lgc_every > 0 && (i + 1) % lgc_every == 0) {
      // Both configurations run their local GC (Rotor's baseline has one
      // too); the DGC-extended one additionally pays the reference-listing
      // keep-up (stub recomputation + NewSetStubs).
      rt.proc(0).run_lgc();
      rt.proc(1).run_lgc();
      rt.run_for(1'000);
    }
  }
  rt.run_for(10'000);
  return sw.ms();
}

void BM_RmiSeries(benchmark::State& state) {
  const int calls = static_cast<int>(state.range(0));
  const bool dgc = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_series(calls, dgc));
  }
}
BENCHMARK(BM_RmiSeries)
    ->ArgsProduct({{10, 100}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::JsonReport report("table1_rmi");
  bench::header(
      "Table 1 — RMI series cost: plain runtime vs DGC-extended\n"
      "(paper: Rotor vs Rotor w/ DGC; 10 refs exported per call;\n"
      " paper overhead 7.19% / 18.64% / 20.73% / 17.92%)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {10, 100, 500, 1000}) {
    // Warm, then take the best of 5 to de-noise.
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      base = std::min(base, run_series(calls, false));
      dgc = std::min(dgc, run_series(calls, true));
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("rmi_series", {{"calls", static_cast<double>(calls)},
                              {"plain_ms", base},
                              {"dgc_ms", dgc},
                              {"overhead_pct", overhead}});
  }

  bench::header(
      "Extension — same series with reference-listing keep-up interleaved\n"
      "(local GC + NewSetStubs every 50 calls in BOTH configurations; the\n"
      " paper defers this cost outside its Table 1 measurement window)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {100, 500, 1000}) {
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      base = std::min(base, run_series(calls, false, 50));
      dgc = std::min(dgc, run_series(calls, true, 50));
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("rmi_series_with_keepup", {{"calls", static_cast<double>(calls)},
                                          {"plain_ms", base},
                                          {"dgc_ms", dgc},
                                          {"overhead_pct", overhead}});
  }
  return 0;
}
