// Fig. 5 / Fig. 2 quantified — mutator–DCDA races under invocation churn.
//
// A live ring (kept reachable by a rooted driver) is continuously invoked
// while snapshots and detections run at full speed. Reports, per churn
// rate: detections started, aborted by invocation counters, aborted on
// Local.Reach, false collections (MUST be zero — that is the paper's safety
// claim), and — after churn stops — how long until the then-garbage ring is
// reclaimed (the paper's liveness claim: races only ever delay).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

struct RaceResult {
  std::uint64_t started = 0;
  std::uint64_t aborted_ic = 0;
  std::uint64_t aborted_local = 0;
  std::uint64_t false_collections = 0;
  SimTime reclaim_after_churn_us = 0;
  bool collected = false;
};

RaceResult run_race(SimTime churn_gap_us, int churn_ops, std::uint64_t seed,
                    SimTime quarantine_us = 0) {
  RuntimeConfig cfg = sim::fast_config(seed);
  // Aggressive detector so races actually interleave with detections. A
  // zero quarantine deliberately disables the paper's "not invoked for a
  // while" heuristic: every scan probes even freshly-touched scions, which
  // maximizes mutator-detector races (the safety machinery must absorb
  // them all).
  cfg.proc.snapshot_period_us = 6'000;
  cfg.proc.dcda_scan_period_us = 8'000;
  cfg.proc.candidate_quarantine_us = quarantine_us;
  // Slow links: a CDM takes several milliseconds per hop, so in-flight
  // detections genuinely overlap with mutator invocations.
  cfg.net.mean_latency_us = 2'000;
  cfg.net.min_latency_us = 500;
  Runtime rt(4, cfg);

  const sim::Ring ring = sim::build_ring(rt, 4, 2, /*pin_first=*/false);
  const ObjectSeq driver = rt.proc(0).create_object();
  rt.proc(0).add_root(driver);
  const RefId to_head = rt.link(ObjectId{0, driver}, ring.heads[1]);
  rt.run_for(100'000);

  RaceResult res;
  // Churn phase: invocations THROUGH the ring's own references (the Fig. 5
  // situation — the mutator walks the very path detections trace), plus the
  // driver's entry reference, at the given gap.
  for (int i = 0; i < churn_ops; ++i) {
    rt.proc(0).invoke(driver, to_head, InvokeEffect::kTouch);
    const std::size_t hop = static_cast<std::size_t>(i) % ring.ring_refs.size();
    rt.proc(static_cast<ProcessId>(hop))
        .invoke(ring.heads[hop].seq, ring.ring_refs[hop], InvokeEffect::kTouch);
    rt.run_for(churn_gap_us);
    // Safety audit: the ring must be fully intact.
    if (!rt.proc(1).heap().exists(ring.heads[1].seq) ||
        !rt.proc(0).heap().exists(ring.heads[0].seq)) {
      ++res.false_collections;
    }
  }

  const Metrics churn_m = rt.total_metrics();
  res.started = churn_m.detections_started.get();
  res.aborted_ic = churn_m.detections_aborted_ic.get();
  res.aborted_local = churn_m.detections_aborted_local.get();

  // Release phase: drop the driver's reference; measure reclamation.
  rt.proc(0).remove_remote_ref(driver, to_head);
  const SimTime released = rt.now();
  const SimTime deadline = released + 60'000'000;
  while (rt.now() < deadline) {
    rt.run_for(10'000);
    std::size_t total = 0;
    for (ProcessId pid = 0; pid < rt.size(); ++pid) total += rt.proc(pid).heap().size();
    if (total == 1) {  // only the driver left
      res.collected = true;
      break;
    }
  }
  res.reclaim_after_churn_us = rt.now() - released;
  return res;
}

void BM_ChurnRace(benchmark::State& state) {
  const auto gap = static_cast<SimTime>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_race(gap, 30, seed++));
  }
}
BENCHMARK(BM_ChurnRace)->Arg(20'000)->Arg(5'000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::header(
      "Fig. 5 / Fig. 2 — mutator-DCDA races under invocation churn\n"
      "(safety: false collections MUST stay 0; liveness: reclaim once quiet)");
  std::printf("%-14s %10s %12s %14s %12s %16s %10s\n", "churn gap", "started",
              "aborted-IC", "aborted-local", "false-coll", "reclaim (ms)", "status");
  for (SimTime gap : {50'000u, 20'000u, 10'000u, 5'000u, 2'000u}) {
    const RaceResult r = run_race(gap, 60, 500 + gap, /*quarantine_us=*/0);
    std::printf("%-11.0fms %10llu %12llu %14llu %12llu %16.1f %10s\n", gap / 1000.0,
                static_cast<unsigned long long>(r.started),
                static_cast<unsigned long long>(r.aborted_ic),
                static_cast<unsigned long long>(r.aborted_local),
                static_cast<unsigned long long>(r.false_collections),
                r.reclaim_after_churn_us / 1000.0,
                r.collected ? "collected" : "TIMEOUT");
  }
  std::printf("\nShape: with the quarantine heuristic disabled, churn produces real\n"
              "mutator-detector races; the counters absorb every one (wasted work,\n"
              "as the paper's optimistic design accepts) and never a false\n"
              "collection; post-churn reclaim stays flat — races only delay.\n");

  bench::header(
      "Same churn WITH the paper's quarantine heuristic (§2.1) enabled\n"
      "(touched scions are not probed: races become rare by construction)");
  std::printf("%-14s %10s %12s %14s %12s\n", "churn gap", "started", "aborted-IC",
              "aborted-local", "false-coll");
  for (SimTime gap : {20'000u, 5'000u}) {
    const RaceResult r = run_race(gap, 60, 800 + gap, /*quarantine_us=*/4'000);
    std::printf("%-11.0fms %10llu %12llu %14llu %12llu\n", gap / 1000.0,
                static_cast<unsigned long long>(r.started),
                static_cast<unsigned long long>(r.aborted_ic),
                static_cast<unsigned long long>(r.aborted_local),
                static_cast<unsigned long long>(r.false_collections));
  }
  return 0;
}
