// Baseline comparison — DCDA vs distributed back-tracing (§5).
//
// The paper argues back-tracing (Maheshwari & Liskov '97) is "a direct
// acyclic chaining of recursive remote procedure calls, which is clearly
// unscalable", and that it forces every process to keep per-detection
// state. This bench quantifies both claims on identical garbage rings:
// messages exchanged, request-chain depth, and intermediate state records.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/baseline/backtrace_detector.h"
#include "src/baseline/global_trace.h"
#include "src/sim/scenarios.h"

namespace adgc {
namespace {

struct Comparison {
  std::uint64_t dcda_msgs = 0;
  std::uint64_t dcda_bytes = 0;
  std::uint64_t bt_msgs = 0;
  std::uint64_t bt_depth = 0;
  bool dcda_ok = false;
  bool bt_ok = false;
};

Comparison compare(std::size_t n_procs, std::size_t deps, std::uint64_t seed) {
  Comparison cmp;
  // --- DCDA run ---
  {
    Runtime rt(n_procs + deps, sim::manual_config(seed));
    const sim::Ring ring = sim::build_ring(rt, n_procs, 2, /*pin_first=*/false);
    // Optional extra garbage dependencies converging on the head.
    for (std::size_t d = 0; d < deps; ++d) {
      const ProcessId pid = static_cast<ProcessId>(n_procs + d);
      const ObjectSeq w = rt.proc(pid).create_object();
      const ObjectSeq w2 = rt.proc(pid).create_object();
      rt.proc(pid).add_root(w2);
      rt.proc(pid).add_local_ref(w2, w);
      rt.link(ObjectId{pid, w}, ring.heads[0]);
    }
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      rt.proc(pid).run_lgc();
      rt.proc(pid).take_snapshot();
    }
    rt.run_for(50'000);
    const Metrics before = rt.total_metrics();
    rt.proc(ring.ring_refs[0] != kNoRef ? ring.heads[1].owner : 0)
        .detector()
        .start_detection(ring.ring_refs[0], rt.now());
    rt.run_for(1'000'000);
    const Metrics after = rt.total_metrics();
    cmp.dcda_msgs = after.cdms_sent.get() - before.cdms_sent.get();
    cmp.dcda_bytes = after.cdm_bytes.get() - before.cdm_bytes.get();
    cmp.dcda_ok = deps > 0
                      ? after.detections_cycle_found.get() == 0  // deps are live
                      : after.detections_cycle_found.get() == 1;
  }
  // --- Back-tracing run ---
  {
    Runtime rt(n_procs + deps, sim::manual_config(seed + 1));
    const sim::Ring ring = sim::build_ring(rt, n_procs, 2, /*pin_first=*/false);
    for (std::size_t d = 0; d < deps; ++d) {
      const ProcessId pid = static_cast<ProcessId>(n_procs + d);
      const ObjectSeq w = rt.proc(pid).create_object();
      const ObjectSeq w2 = rt.proc(pid).create_object();
      rt.proc(pid).add_root(w2);
      rt.proc(pid).add_local_ref(w2, w);
      rt.link(ObjectId{pid, w}, ring.heads[0]);
    }
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      rt.proc(pid).run_lgc();
      rt.proc(pid).take_snapshot();
    }
    rt.run_for(50'000);
    const Metrics before = rt.total_metrics();
    rt.proc(ring.heads[1].owner).start_backtrace(ring.ring_refs[0]);
    rt.run_for(1'000'000);
    const Metrics after = rt.total_metrics();
    cmp.bt_msgs = (after.backtrace_requests.get() - before.backtrace_requests.get()) +
                  (after.backtrace_replies.get() - before.backtrace_replies.get());
    std::uint32_t depth = 0;
    for (ProcessId pid = 0; pid < rt.size(); ++pid) {
      depth = std::max(depth, rt.proc(pid).backtracer().max_depth_seen());
    }
    cmp.bt_depth = depth;
    cmp.bt_ok = deps > 0 ? after.backtrace_cycles_found.get() == 0
                         : after.backtrace_cycles_found.get() == 1;
  }
  return cmp;
}

void BM_DcdaVsBacktrace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare(n, 0, seed));
    seed += 2;
  }
}
BENCHMARK(BM_DcdaVsBacktrace)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::header(
      "§5 quantified — DCDA vs distributed back-tracing on identical rings\n"
      "(one probe each, manual snapshots; both must reach the same verdict)");
  std::printf("%-4s %-5s %12s %12s %10s %10s %10s %8s %8s\n", "N", "deps",
              "DCDA msgs", "DCDA bytes", "BT msgs", "BT depth", "BT/DCDA", "DCDA ok",
              "BT ok");
  for (std::size_t n : {2u, 4u, 8u, 12u, 16u}) {
    for (std::size_t deps : {0u, 2u}) {
      const Comparison c = compare(n, deps, 900 + n * 10 + deps);
      std::printf("%-4zu %-5zu %12llu %12llu %10llu %10llu %9.1fx %8s %8s\n", n, deps,
                  static_cast<unsigned long long>(c.dcda_msgs),
                  static_cast<unsigned long long>(c.dcda_bytes),
                  static_cast<unsigned long long>(c.bt_msgs),
                  static_cast<unsigned long long>(c.bt_depth),
                  c.dcda_msgs ? static_cast<double>(c.bt_msgs) /
                                    static_cast<double>(c.dcda_msgs)
                              : 0.0,
                  c.dcda_ok ? "yes" : "NO", c.bt_ok ? "yes" : "NO");
    }
  }
  std::printf("\nShape: the back-tracer needs ~2 messages per hop (request+reply)\n"
              "and a synchronous chain as deep as the cycle, holding state at\n"
              "every intermediate process; the DCDA needs one CDM per hop and\n"
              "keeps state only at the initiator.\n");

  bench::header(
      "Three-way — DCDA probe vs back-trace vs global-trace epoch on a ring\n"
      "(global trace counts start+marks+polls+status+finish; it must involve\n"
      " EVERY process even when the garbage touches only the ring)");
  std::printf("%-4s %-7s %12s %10s %14s\n", "N", "extra", "DCDA msgs", "BT msgs",
              "GlobalTrace");
  for (std::size_t n : {4u, 8u, 16u}) {
    for (std::size_t bystanders : {0u, 8u}) {
      // `bystanders` = processes with no part in the garbage at all.
      const Comparison c = compare(n, 0, 1300 + n);
      Runtime rt(n + bystanders, sim::manual_config(1400 + n + bystanders));
      sim::build_ring(rt, n, 2, /*pin_first=*/false);
      // Give bystanders some live local data.
      for (std::size_t b = 0; b < bystanders; ++b) {
        const auto pid = static_cast<ProcessId>(n + b);
        const ObjectSeq o = rt.proc(pid).create_object();
        rt.proc(pid).add_root(o);
      }
      rt.run_for(30'000);
      const Metrics before = rt.total_metrics();
      std::vector<ProcessId> members;
      for (ProcessId pid = 0; pid < rt.size(); ++pid) members.push_back(pid);
      rt.proc(0).gtrace().start_epoch(members);
      rt.run_for(2'000'000);
      const Metrics after = rt.total_metrics();
      const std::uint64_t gt_msgs =
          after.messages_sent.get() - before.messages_sent.get();
      std::printf("%-4zu %-7zu %12llu %10llu %14llu\n", n, bystanders,
                  static_cast<unsigned long long>(c.dcda_msgs),
                  static_cast<unsigned long long>(c.bt_msgs),
                  static_cast<unsigned long long>(gt_msgs));
    }
  }
  std::printf("\nShape: DCDA and back-trace costs depend only on the garbage\n"
              "structure; the global trace pays per *process in the world*\n"
              "(polls/status), growing with bystanders that own no garbage.\n");
  return 0;
}
