// §4 serialization evaluation reproduction.
//
// Paper numbers:
//   Rotor (reflective serializer), 10k linked dummy objects:      26 037 ms
//   Rotor, same graph + one remote reference per object (10k stubs):
//                                                        45 125 ms (+73%)
//   Production .NET (OBIWAN reimplementation):            250-350 ms
//   → "serializing a remote reference is faster than serializing an
//      additional dummy object", and production serialization is ~100×
//      faster than Rotor's.
//
// Here: NaiveSerializer (reflective/text, models Rotor) vs BinarySerializer
// (bulk binary, models production .NET) on the same graph shapes. The
// reproduction targets are the *ratios*: naive ≫ binary, and adding stubs
// costs extra but less than doubling the object count would.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/arena.h"
#include "src/net/message.h"
#include "src/snapshot/serializer.h"

namespace adgc {
namespace {

/// The paper's workload: a chain of `n` dummy objects, each just holding a
/// reference to the next; optionally one remote reference (stub) each.
SnapshotData chain_snapshot(std::size_t n, bool with_stubs) {
  SnapshotData snap;
  snap.pid = 0;
  snap.taken_at = 1;
  snap.objects.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    if (i < n) o.local_fields.push_back(i + 1);
    if (with_stubs) o.remote_fields.push_back(make_ref_id(0, i));
    snap.objects.push_back(std::move(o));
  }
  snap.roots = {1};
  if (with_stubs) {
    snap.stubs.reserve(n);
    for (std::size_t i = 1; i <= n; ++i) {
      snap.stubs.push_back({make_ref_id(0, i), ObjectId{1, i}, 0});
    }
  }
  return snap;
}

void BM_Serialize(benchmark::State& state) {
  const bool naive = state.range(0) != 0;
  const bool stubs = state.range(1) != 0;
  const auto snap = chain_snapshot(10'000, stubs);
  NaiveSerializer n;
  BinarySerializer b;
  const Serializer& s = naive ? static_cast<const Serializer&>(n)
                              : static_cast<const Serializer&>(b);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto out = s.serialize(snap);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel((naive ? std::string("naive") : std::string("binary")) +
                 (stubs ? "+10k stubs" : ""));
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Serialize)->ArgsProduct({{0, 1}, {0, 1}})->Unit(benchmark::kMillisecond);

void BM_Deserialize(benchmark::State& state) {
  const bool naive = state.range(0) != 0;
  const auto snap = chain_snapshot(10'000, true);
  NaiveSerializer n;
  BinarySerializer b;
  const Serializer& s = naive ? static_cast<const Serializer&>(n)
                              : static_cast<const Serializer&>(b);
  const auto bytes = s.serialize(snap);
  for (auto _ : state) {
    auto back = s.deserialize(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetLabel(naive ? "naive" : "binary");
}
BENCHMARK(BM_Deserialize)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Batch-encode microbench: serializing 32 control messages into one
/// arena-backed buffer (the batcher's flush path) vs 32 individual
/// encode_message calls, each allocating its own vector. What the arena
/// buys is allocation reuse; the per-item encode work is identical.
AddScionAckMsg bench_ack(std::uint64_t i) {
  AddScionAckMsg m;
  m.ref = make_ref_id(1, i);
  m.handshake = i;
  return m;
}

void BM_EncodeIndividual(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::size_t total = 0;
    for (int i = 0; i < n; ++i) {
      const auto bytes = encode_message(MessagePayload{bench_ack(i)});
      total += bytes.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EncodeIndividual)->Arg(32)->Arg(256);

void BM_EncodeArenaBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BufferArena arena;
  for (auto _ : state) {
    ByteWriter w{arena.acquire()};
    w.u8(static_cast<std::uint8_t>(MessageTag::kBatch));
    w.u32(static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::size_t at = w.size();
      w.u32(0);
      encode_message_into(w, MessagePayload{bench_ack(i)});
      w.patch_u32(at, static_cast<std::uint32_t>(w.size() - at - 4));
    }
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
    arena.release(std::move(bytes));  // steady-state: the buffer comes back
  }
}
BENCHMARK(BM_EncodeArenaBatch)->Arg(32)->Arg(256);

double measure_ms(const Serializer& s, const SnapshotData& snap, int reps = 5) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    bench::Stopwatch sw;
    auto out = s.serialize(snap);
    benchmark::DoNotOptimize(out);
    best = std::min(best, sw.ms());
  }
  return best;
}

}  // namespace
}  // namespace adgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  using namespace adgc;
  bench::JsonReport report("serialization");
  bench::header(
      "§4 snapshot serialization — 10k dummy objects\n"
      "(paper: Rotor 26037 ms, +10k stubs 45125 ms (+73%);\n"
      " production .NET 250-350 ms, ~100x faster)");

  const auto plain = chain_snapshot(10'000, false);
  const auto stubbed = chain_snapshot(10'000, true);
  NaiveSerializer naive;
  BinarySerializer binary;

  const double n_plain = measure_ms(naive, plain);
  const double n_stub = measure_ms(naive, stubbed);
  const double b_plain = measure_ms(binary, plain);
  const double b_stub = measure_ms(binary, stubbed);

  std::printf("%-34s %12s\n", "configuration", "time (ms)");
  std::printf("%-34s %12.2f\n", "naive (Rotor stand-in), plain", n_plain);
  std::printf("%-34s %12.2f  (+%.0f%% over plain)\n",
              "naive, +10k remote references", n_stub, (n_stub - n_plain) / n_plain * 100);
  std::printf("%-34s %12.2f\n", "binary (.NET stand-in), plain", b_plain);
  std::printf("%-34s %12.2f\n", "binary, +10k remote references", b_stub);
  std::printf("\nnaive/binary ratio (plain):   %6.1fx   (paper: ~100x)\n",
              n_plain / b_plain);
  std::printf("naive/binary ratio (stubbed): %6.1fx\n", n_stub / b_stub);
  // "Serializing a remote reference is faster than serializing an
  //  additional dummy object": compare the stub increment against a graph
  //  with 20k objects.
  const auto doubled = chain_snapshot(20'000, false);
  const double n_doubled = measure_ms(naive, doubled);
  std::printf(
      "\nstub increment %.2f ms vs extra-10k-objects increment %.2f ms "
      "(stubs cheaper: %s)\n",
      n_stub - n_plain, n_doubled - n_plain,
      (n_stub - n_plain) < (n_doubled - n_plain) ? "yes" : "NO");

  report.add("serializers", {{"naive_plain_ms", n_plain},
                             {"naive_stubbed_ms", n_stub},
                             {"binary_plain_ms", b_plain},
                             {"binary_stubbed_ms", b_stub},
                             {"naive_binary_ratio", n_plain / b_plain}});

  bench::header(
      "Extension — batch encode path: 32-message arena batch vs 32\n"
      "individual encode_message allocations (the batcher's flush path)");
  constexpr int kMsgs = 32, kReps = 20'000;
  double individual_ms = 1e100;
  for (int attempt = 0; attempt < 3; ++attempt) {
    bench::Stopwatch sw;
    std::size_t sink = 0;
    for (int r = 0; r < kReps; ++r) {
      for (int i = 0; i < kMsgs; ++i) {
        sink += encode_message(MessagePayload{bench_ack(i)}).size();
      }
    }
    benchmark::DoNotOptimize(sink);
    individual_ms = std::min(individual_ms, sw.ms());
  }
  double arena_ms = 1e100;
  BufferArena arena;
  for (int attempt = 0; attempt < 3; ++attempt) {
    bench::Stopwatch sw;
    std::size_t sink = 0;
    for (int r = 0; r < kReps; ++r) {
      ByteWriter w{arena.acquire()};
      w.u8(static_cast<std::uint8_t>(MessageTag::kBatch));
      w.u32(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t at = w.size();
        w.u32(0);
        encode_message_into(w, MessagePayload{bench_ack(i)});
        w.patch_u32(at, static_cast<std::uint32_t>(w.size() - at - 4));
      }
      auto bytes = w.take();
      sink += bytes.size();
      arena.release(std::move(bytes));
    }
    benchmark::DoNotOptimize(sink);
    arena_ms = std::min(arena_ms, sw.ms());
  }
  const double per_msg_individual_ns = individual_ms * 1e6 / (kReps * kMsgs);
  const double per_msg_arena_ns = arena_ms * 1e6 / (kReps * kMsgs);
  std::printf("individual encode: %8.1f ns/msg\n", per_msg_individual_ns);
  std::printf("arena batch:       %8.1f ns/msg   (%.2fx)\n", per_msg_arena_ns,
              per_msg_individual_ns / per_msg_arena_ns);
  report.add("batch_encode", {{"individual_ns_per_msg", per_msg_individual_ns},
                              {"arena_ns_per_msg", per_msg_arena_ns},
                              {"speedup", per_msg_individual_ns / per_msg_arena_ns}});
  return 0;
}
