// Shared helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc::bench {

/// Wall-clock stopwatch (milliseconds, double).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Machine-readable benchmark results: each benchmark binary accumulates
/// rows and writes one `BENCH_<name>.json` into the working directory, so
/// CI and plotting scripts consume numbers without scraping the human
/// tables. Plain fprintf JSON — no serialization dependency wanted here.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() { write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  /// Adds one result row: a series label plus numeric fields.
  void add(const std::string& series,
           std::vector<std::pair<std::string, double>> fields) {
    rows_.push_back({series, std::move(fields)});
  }

  /// Writes BENCH_<name>.json (also called by the destructor; idempotent).
  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {\"series\": \"%s\"", rows_[i].series.c_str());
      for (const auto& [key, value] : rows_[i].fields) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string series;
    std::vector<std::pair<std::string, double>> fields;
  };

  std::string name_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace adgc::bench
