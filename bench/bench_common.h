// Shared helpers for the benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"

namespace adgc::bench {

/// Wall-clock stopwatch (milliseconds, double).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace adgc::bench
