// Table 1 variant over real TCP — RMI cost with kernel sockets in the path.
//
// Same shape as bench_table1_rmi (series of remote invocations, 10 fresh
// references exported per call, 4 KiB marshalled payload, DGC off vs on),
// but client and server are two NodeRuntimes wired through the TCP
// transport over localhost. Times now include real syscalls, framing,
// CRCs, and scheduler wakeups — the closest this reproduction gets to the
// paper's Rotor-on-a-LAN measurement conditions. The reproduction target
// is still the relative DGC overhead column, not absolute numbers.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/rt/node_runtime.h"

namespace adgc {
namespace {

std::uint16_t reserve_port() {
  Metrics m;
  TcpTransport::Options o;
  o.self = 99;
  TcpTransport probe(o, m);
  probe.start();
  const std::uint16_t port = probe.port();
  probe.stop(0);
  return port;
}

RuntimeConfig node_cfg(bool dgc, std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.proc.dgc_enabled = dgc;
  cfg.proc.dcda_enabled = dgc;
  // Keep the periodic collectors out of the measurement window (Table 1
  // isolates per-call stub/scion cost, as in the in-sim benchmark).
  cfg.proc.lgc_period_us = 10'000'000;
  cfg.proc.snapshot_period_us = 10'000'000;
  cfg.proc.dcda_scan_period_us = 10'000'000;
  return cfg;
}

/// Runs `calls` invocations client→server over TCP; returns wall ms for the
/// whole series (every call awaited: the next call is issued only after the
/// reply to the previous one arrived — RMI is synchronous in the paper).
double run_series(int calls, bool dgc) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, {"127.0.0.1", p0}},
                                               {1, {"127.0.0.1", p1}}};
  NodeRuntime::Options o0;
  o0.pid = 0;
  o0.cfg = node_cfg(dgc, 1);
  o0.listen = "127.0.0.1:" + std::to_string(p0);
  o0.peers = peers;
  NodeRuntime::Options o1 = o0;
  o1.pid = 1;
  o1.cfg = node_cfg(dgc, 2);
  o1.listen = "127.0.0.1:" + std::to_string(p1);

  NodeRuntime client(std::move(o0)), server(std::move(o1));
  client.start();
  server.start();

  ObjectSeq server_obj = kNoObject;
  server.post_sync([&](Process& p) {
    server_obj = p.create_object();
    p.add_root(server_obj);
  });
  ExportedRef exported;
  server.post_sync([&](Process& p) { exported = p.export_own_object(server_obj, 0); });

  ObjectSeq client_obj = kNoObject;
  RefId ref = kNoRef;
  client.post_sync([&](Process& p) {
    client_obj = p.create_object();
    p.add_root(client_obj);
    ref = p.install_ref(client_obj, exported);
  });

  const auto replies = [&] {
    std::uint64_t n = 0;
    client.post_sync([&](Process& p) { n = p.metrics().replies_received.get(); });
    return n;
  };

  bench::Stopwatch sw;
  std::uint64_t done = replies();
  for (int i = 0; i < calls; ++i) {
    client.post_sync([&](Process& p) {
      std::vector<ArgRef> args;
      args.reserve(10);
      for (int a = 0; a < 10; ++a) {
        const ObjectSeq obj = p.create_object();
        p.add_root(obj);
        args.push_back(ArgRef::own(obj));
      }
      p.invoke(client_obj, ref, InvokeEffect::kStoreArgs, std::move(args),
               /*want_reply=*/true, /*payload_bytes=*/4096);
    });
    // Synchronous RMI: spin (with a tiny yield) until the reply lands.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (replies() <= done) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "bench_tcp_rmi: reply %d never arrived\n", i);
        client.stop(0);
        server.stop(0);
        return -1.0;
      }
      std::this_thread::yield();
    }
    done = replies();
  }
  const double ms = sw.ms();
  client.stop(0);
  server.stop(0);
  return ms;
}

}  // namespace
}  // namespace adgc

int main() {
  using namespace adgc;
  bench::JsonReport report("tcp_rmi");
  bench::header(
      "Table 1 over real TCP — synchronous RMI series, localhost sockets\n"
      "(two adgc_node runtimes in-process; 10 refs exported per call,\n"
      " 4 KiB payload; reproduction target is the relative DGC overhead)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {10, 100, 500, 1000}) {
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const double b = run_series(calls, false);
      const double d = run_series(calls, true);
      if (b > 0) base = std::min(base, b);
      if (d > 0) dgc = std::min(dgc, d);
    }
    if (base >= 1e100 || dgc >= 1e100) {
      std::printf("%-12d %14s %16s %12s\n", calls, "FAILED", "FAILED", "-");
      continue;
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("tcp_rmi_series", {{"calls", static_cast<double>(calls)},
                                  {"plain_ms", base},
                                  {"dgc_ms", dgc},
                                  {"overhead_pct", overhead}});
  }
  return 0;
}
