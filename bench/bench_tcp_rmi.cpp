// Table 1 variant over real TCP — RMI cost with kernel sockets in the path.
//
// Same shape as bench_table1_rmi (series of remote invocations, 10 fresh
// references exported per call, 4 KiB marshalled payload, DGC off vs on),
// but client and server are two NodeRuntimes wired through the TCP
// transport over localhost. Times now include real syscalls, framing,
// CRCs, and scheduler wakeups — the closest this reproduction gets to the
// paper's Rotor-on-a-LAN measurement conditions. The reproduction target
// is still the relative DGC overhead column, not absolute numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "bench/bench_common.h"
#include "src/rt/node_runtime.h"

namespace adgc {
namespace {

std::uint16_t reserve_port() {
  Metrics m;
  TcpTransport::Options o;
  o.self = 99;
  TcpTransport probe(o, m);
  probe.start();
  const std::uint16_t port = probe.port();
  probe.stop(0);
  return port;
}

RuntimeConfig node_cfg(bool dgc, std::uint64_t seed) {
  RuntimeConfig cfg;
  cfg.seed = seed;
  cfg.proc.dgc_enabled = dgc;
  cfg.proc.dcda_enabled = dgc;
  // Keep the periodic collectors out of the measurement window (Table 1
  // isolates per-call stub/scion cost, as in the in-sim benchmark).
  cfg.proc.lgc_period_us = 10'000'000;
  cfg.proc.snapshot_period_us = 10'000'000;
  cfg.proc.dcda_scan_period_us = 10'000'000;
  return cfg;
}

/// Runs `calls` invocations client→server over TCP; returns wall ms for the
/// whole series (every call awaited: the next call is issued only after the
/// reply to the previous one arrived — RMI is synchronous in the paper).
double run_series(int calls, bool dgc) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, {"127.0.0.1", p0}},
                                               {1, {"127.0.0.1", p1}}};
  NodeRuntime::Options o0;
  o0.pid = 0;
  o0.cfg = node_cfg(dgc, 1);
  o0.listen = "127.0.0.1:" + std::to_string(p0);
  o0.peers = peers;
  NodeRuntime::Options o1 = o0;
  o1.pid = 1;
  o1.cfg = node_cfg(dgc, 2);
  o1.listen = "127.0.0.1:" + std::to_string(p1);

  NodeRuntime client(std::move(o0)), server(std::move(o1));
  client.start();
  server.start();

  ObjectSeq server_obj = kNoObject;
  server.post_sync([&](Process& p) {
    server_obj = p.create_object();
    p.add_root(server_obj);
  });
  ExportedRef exported;
  server.post_sync([&](Process& p) { exported = p.export_own_object(server_obj, 0); });

  ObjectSeq client_obj = kNoObject;
  RefId ref = kNoRef;
  client.post_sync([&](Process& p) {
    client_obj = p.create_object();
    p.add_root(client_obj);
    ref = p.install_ref(client_obj, exported);
  });

  const auto replies = [&] {
    std::uint64_t n = 0;
    client.post_sync([&](Process& p) { n = p.metrics().replies_received.get(); });
    return n;
  };

  bench::Stopwatch sw;
  std::uint64_t done = replies();
  for (int i = 0; i < calls; ++i) {
    client.post_sync([&](Process& p) {
      std::vector<ArgRef> args;
      args.reserve(10);
      for (int a = 0; a < 10; ++a) {
        const ObjectSeq obj = p.create_object();
        p.add_root(obj);
        args.push_back(ArgRef::own(obj));
      }
      p.invoke(client_obj, ref, InvokeEffect::kStoreArgs, std::move(args),
               /*want_reply=*/true, /*payload_bytes=*/4096);
    });
    // Synchronous RMI: spin (with a tiny yield) until the reply lands.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (replies() <= done) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "bench_tcp_rmi: reply %d never arrived\n", i);
        client.stop(0);
        server.stop(0);
        return -1.0;
      }
      std::this_thread::yield();
    }
    done = replies();
  }
  const double ms = sw.ms();
  client.stop(0);
  server.stop(0);
  return ms;
}

/// Wire-cost series over TCP: messages and bytes one RMI costs with
/// control-plane batching on vs off. Three nodes — client (0) invokes
/// server (1) passing 10 references it holds into owner (2); each call runs
/// 10 scion-first handshakes whose acks are the batchable stream. Calls are
/// pipelined per burst so the owner's ack traffic actually coalesces.
struct WireCost {
  double msgs_per_rmi = 0;
  double bytes_per_rmi = 0;
  double p50_burst_ms = 0;
};

WireCost run_wire_series(int bursts, int burst_size, bool batching) {
  const std::uint16_t p0 = reserve_port(), p1 = reserve_port(), p2 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, {"127.0.0.1", p0}},
                                               {1, {"127.0.0.1", p1}},
                                               {2, {"127.0.0.1", p2}}};
  auto opts = [&](ProcessId pid, std::uint16_t port) {
    NodeRuntime::Options o;
    o.pid = pid;
    o.cfg = node_cfg(true, pid + 1);
    o.cfg.proc.batching_enabled = batching;
    o.listen = "127.0.0.1:" + std::to_string(port);
    o.peers = peers;
    return o;
  };
  NodeRuntime client(opts(0, p0)), server(opts(1, p1)), owner(opts(2, p2));
  client.start();
  server.start();
  owner.start();

  ObjectSeq server_obj = kNoObject;
  server.post_sync([&](Process& p) {
    server_obj = p.create_object();
    p.add_root(server_obj);
  });
  ExportedRef call_target;
  server.post_sync([&](Process& p) { call_target = p.export_own_object(server_obj, 0); });

  std::vector<ExportedRef> exported(10);
  owner.post_sync([&](Process& p) {
    for (auto& er : exported) {
      const ObjectSeq obj = p.create_object();
      p.add_root(obj);
      er = p.export_own_object(obj, 0);
    }
  });

  ObjectSeq client_obj = kNoObject;
  RefId call_ref = kNoRef;
  std::vector<RefId> held(10);
  client.post_sync([&](Process& p) {
    client_obj = p.create_object();
    p.add_root(client_obj);
    call_ref = p.install_ref(client_obj, call_target);
    for (std::size_t i = 0; i < exported.size(); ++i) {
      held[i] = p.install_ref(client_obj, exported[i]);
    }
  });

  const auto replies = [&] {
    std::uint64_t n = 0;
    client.post_sync([&](Process& p) { n = p.metrics().replies_received.get(); });
    return n;
  };
  const auto wire_totals = [&](std::uint64_t* msgs, std::uint64_t* bytes) {
    Metrics total;
    total.merge(client.total_metrics());
    total.merge(server.total_metrics());
    total.merge(owner.total_metrics());
    *msgs = total.messages_sent.get();
    *bytes = total.bytes_sent.get();
  };

  // Warm the connections (and the handshake path) outside the window.
  client.post_sync([&](Process& p) {
    p.invoke(client_obj, call_ref, InvokeEffect::kTouch,
             {ArgRef::held(held[0])});
  });
  {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (replies() < 1) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "bench_tcp_rmi: wire-cost warmup stalled\n");
        client.stop(0);
        server.stop(0);
        owner.stop(0);
        return {};
      }
      std::this_thread::yield();
    }
  }

  std::uint64_t msgs_before = 0, bytes_before = 0;
  wire_totals(&msgs_before, &bytes_before);
  std::uint64_t expected = replies();
  std::vector<double> burst_ms;
  burst_ms.reserve(static_cast<std::size_t>(bursts));
  for (int b = 0; b < bursts; ++b) {
    bench::Stopwatch sw;
    client.post_sync([&](Process& p) {
      for (int i = 0; i < burst_size; ++i) {
        std::vector<ArgRef> args;
        args.reserve(held.size());
        for (const RefId r : held) args.push_back(ArgRef::held(r));
        p.invoke(client_obj, call_ref, InvokeEffect::kTouch, std::move(args));
      }
    });
    expected += static_cast<std::uint64_t>(burst_size);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (replies() < expected) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "bench_tcp_rmi: wire-cost burst %d stalled\n", b);
        client.stop(0);
        server.stop(0);
        owner.stop(0);
        return {};
      }
      std::this_thread::yield();
    }
    burst_ms.push_back(sw.ms());
  }
  std::uint64_t msgs_after = 0, bytes_after = 0;
  wire_totals(&msgs_after, &bytes_after);
  client.stop(0);
  server.stop(0);
  owner.stop(0);

  const double calls = static_cast<double>(bursts) * burst_size;
  WireCost out;
  out.msgs_per_rmi = static_cast<double>(msgs_after - msgs_before) / calls;
  out.bytes_per_rmi = static_cast<double>(bytes_after - bytes_before) / calls;
  std::sort(burst_ms.begin(), burst_ms.end());
  out.p50_burst_ms = burst_ms[burst_ms.size() / 2];
  return out;
}

/// Mutator-visible snapshot cost over a live TCP node pair, pipeline on vs
/// off — same protocol as the threaded leg in bench_table1_rmi (off leg:
/// take_snapshot blocks the actor for the full pass; on leg:
/// request_snapshot pays capture + hand-off only; every request awaits its
/// publish so neither leg coalesces), but here the snapshotted node also
/// holds real TCP-installed remote references, so stubs and scions cross
/// the summarizer.
struct SnapshotCost {
  double sync_us = 0;
  double summarizations = 0;
  double persist_failures = 0;
};

SnapshotCost run_snapshot_series(int snapshots, bool pipeline) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("adgc_bench_tcp_snap_") + (pipeline ? "on" : "off"));
  fs::remove_all(dir);

  const std::uint16_t p0 = reserve_port(), p1 = reserve_port();
  const std::map<ProcessId, PeerAddr> peers = {{0, {"127.0.0.1", p0}},
                                               {1, {"127.0.0.1", p1}}};
  NodeRuntime::Options o0;
  o0.pid = 0;
  o0.cfg = node_cfg(true, 1);
  o0.cfg.proc.snapshot_pipeline = pipeline;
  o0.cfg.proc.snapshot_dir = (dir / "n0").string();
  o0.listen = "127.0.0.1:" + std::to_string(p0);
  o0.peers = peers;
  NodeRuntime::Options o1 = o0;
  o1.pid = 1;
  o1.cfg = node_cfg(true, 2);
  o1.cfg.proc.snapshot_pipeline = pipeline;
  o1.cfg.proc.snapshot_dir = (dir / "n1").string();
  o1.listen = "127.0.0.1:" + std::to_string(p1);

  NodeRuntime snap_node(std::move(o0)), owner(std::move(o1));
  snap_node.start();
  owner.start();

  std::vector<ExportedRef> exported(64);
  owner.post_sync([&](Process& p) {
    for (auto& er : exported) {
      const ObjectSeq obj = p.create_object();
      p.add_root(obj);
      er = p.export_own_object(obj, 0);
    }
  });
  snap_node.post_sync([&](Process& p) {
    ObjectSeq prev = kNoObject;
    for (int i = 0; i < 2000; ++i) {
      const ObjectSeq obj = p.create_object(/*payload_bytes=*/256);
      if (i % 16 == 0) p.add_root(obj);
      if (prev != kNoObject) p.add_local_ref(prev, obj);
      prev = obj;
    }
    const ObjectSeq holder = p.create_object();
    p.add_root(holder);
    for (const ExportedRef& er : exported) p.install_ref(holder, er);
  });

  const auto version = [&] {
    std::uint64_t v = 0;
    snap_node.post_sync([&](Process& p) {
      if (auto s = p.current_summary()) v = s->version;
    });
    return v;
  };

  // Warm pass (store dir + summarizer memo) outside the window.
  snap_node.post_sync([](Process& p) { p.take_snapshot(); });

  double blocked_us = 0;
  for (int i = 0; i < snapshots; ++i) {
    snap_node.post_sync([&](Process& p) {
      const ObjectSeq obj = p.create_object(/*payload_bytes=*/128);
      p.add_root(obj);
    });
    snap_node.post_sync([&](Process& p) {
      const auto t0 = std::chrono::steady_clock::now();
      if (pipeline) {
        p.request_snapshot();
      } else {
        p.take_snapshot();
      }
      blocked_us += std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    });
    const std::uint64_t want = static_cast<std::uint64_t>(i) + 2;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool ok = true;
    while (version() < want) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "bench_tcp_rmi: snapshot %d never published (pipeline=%d)\n",
                     i, pipeline);
        ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!ok) {
      snap_node.stop(0);
      owner.stop(0);
      fs::remove_all(dir);
      return {};
    }
  }
  const Metrics m = snap_node.total_metrics();
  SnapshotCost out;
  out.sync_us = blocked_us / snapshots;
  out.summarizations = static_cast<double>(m.summarizations.get());
  out.persist_failures = static_cast<double>(m.snapshot_persist_failures.get());
  snap_node.stop(0);
  owner.stop(0);
  fs::remove_all(dir);
  return out;
}

}  // namespace
}  // namespace adgc

int main() {
  using namespace adgc;
  bench::JsonReport report("tcp_rmi");
  bench::header(
      "Table 1 over real TCP — synchronous RMI series, localhost sockets\n"
      "(two adgc_node runtimes in-process; 10 refs exported per call,\n"
      " 4 KiB payload; reproduction target is the relative DGC overhead)");
  std::printf("%-12s %14s %16s %12s\n", "# RMI calls", "plain (ms)", "with DGC (ms)",
              "variation");
  for (int calls : {10, 100, 500, 1000}) {
    double base = 1e100, dgc = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const double b = run_series(calls, false);
      const double d = run_series(calls, true);
      if (b > 0) base = std::min(base, b);
      if (d > 0) dgc = std::min(dgc, d);
    }
    if (base >= 1e100 || dgc >= 1e100) {
      std::printf("%-12d %14s %16s %12s\n", calls, "FAILED", "FAILED", "-");
      continue;
    }
    const double overhead = (dgc - base) / base * 100.0;
    std::printf("%-12d %14.2f %16.2f %11.2f%%\n", calls, base, dgc, overhead);
    report.add("tcp_rmi_series", {{"calls", static_cast<double>(calls)},
                                  {"plain_ms", base},
                                  {"dgc_ms", dgc},
                                  {"overhead_pct", overhead}});
  }

  bench::header(
      "Extension — TCP transport messages & bytes per RMI, batching on/off\n"
      "(pipelined bursts; each call re-exports 10 held references, the\n"
      " owner's AddScion acks are the batchable stream)");
  std::printf("%-10s %14s %14s %18s\n", "batching", "msgs/RMI", "bytes/RMI",
              "p50 burst (ms)");
  const int kBursts = 12, kBurstSize = 16;
  const WireCost off = run_wire_series(kBursts, kBurstSize, false);
  const WireCost on = run_wire_series(kBursts, kBurstSize, true);
  if (off.msgs_per_rmi <= 0 || on.msgs_per_rmi <= 0) {
    std::printf("wire-cost series FAILED\n");
    return 1;
  }
  const double msg_reduction =
      (off.msgs_per_rmi - on.msgs_per_rmi) / off.msgs_per_rmi * 100.0;
  const double byte_reduction =
      (off.bytes_per_rmi - on.bytes_per_rmi) / off.bytes_per_rmi * 100.0;
  const double p50_ratio = on.p50_burst_ms / off.p50_burst_ms;
  std::printf("%-10s %14.2f %14.0f %18.2f\n", "off", off.msgs_per_rmi,
              off.bytes_per_rmi, off.p50_burst_ms);
  std::printf("%-10s %14.2f %14.0f %18.2f\n", "on", on.msgs_per_rmi,
              on.bytes_per_rmi, on.p50_burst_ms);
  std::printf("message reduction: %.1f%%   byte reduction: %.1f%%   "
              "p50 burst ratio (on/off): %.3f\n",
              msg_reduction, byte_reduction, p50_ratio);
  report.add("tcp_wire_cost", {{"batching", 0.0},
                               {"msgs_per_rmi", off.msgs_per_rmi},
                               {"bytes_per_rmi", off.bytes_per_rmi},
                               {"p50_burst_ms", off.p50_burst_ms}});
  report.add("tcp_wire_cost", {{"batching", 1.0},
                               {"msgs_per_rmi", on.msgs_per_rmi},
                               {"bytes_per_rmi", on.bytes_per_rmi},
                               {"p50_burst_ms", on.p50_burst_ms}});
  report.add("tcp_wire_cost_summary", {{"msg_reduction_pct", msg_reduction},
                                       {"byte_reduction_pct", byte_reduction}});

  bench::header(
      "Extension — mutator-visible snapshot cost over TCP nodes, pipeline on/off\n"
      "(2k-object heap + 64 TCP-installed remote refs, persisted to disk;\n"
      " bench_diff gates snapshot_sync_speedup at >= 5x)");
  const int kSnapshots = 15;
  const SnapshotCost sync_leg = run_snapshot_series(kSnapshots, false);
  const SnapshotCost pipe_leg = run_snapshot_series(kSnapshots, true);
  if (sync_leg.sync_us <= 0 || pipe_leg.sync_us <= 0) {
    std::printf("snapshot pipeline series FAILED\n");
    return 1;
  }
  const double speedup = sync_leg.sync_us / pipe_leg.sync_us;
  std::printf("%-10s %22s %16s %18s\n", "pipeline", "actor-blocked (us)",
              "summarizations", "persist failures");
  std::printf("%-10s %22.1f %16.0f %18.0f\n", "off", sync_leg.sync_us,
              sync_leg.summarizations, sync_leg.persist_failures);
  std::printf("%-10s %22.1f %16.0f %18.0f\n", "on", pipe_leg.sync_us,
              pipe_leg.summarizations, pipe_leg.persist_failures);
  std::printf("mutator-visible speedup (off/on): %.2fx\n", speedup);
  report.add("snapshot_pipeline", {{"pipeline", 0.0},
                                   {"snapshots", static_cast<double>(kSnapshots)},
                                   {"snapshot_sync_us", sync_leg.sync_us},
                                   {"summarizations", sync_leg.summarizations},
                                   {"persist_failures", sync_leg.persist_failures}});
  report.add("snapshot_pipeline", {{"pipeline", 1.0},
                                   {"snapshots", static_cast<double>(kSnapshots)},
                                   {"snapshot_sync_us", pipe_leg.sync_us},
                                   {"summarizations", pipe_leg.summarizations},
                                   {"persist_failures", pipe_leg.persist_failures}});
  report.add("snapshot_pipeline_summary", {{"snapshot_sync_speedup", speedup}});
  return 0;
}
