// Distributed cache example — the paper's motivating workload class.
//
// A federation of cache servers holds sessions that reference each other
// across nodes (user A's session links to user B's on another shard, and
// vice versa — classic cross-shard cycles). Sessions expire at their home
// shard (root dropped), but the cross-shard cycles would leak forever under
// a plain reference-listing DGC. Watch the DCDA drain them while live
// sessions keep being served.
//
//   ./example_distributed_cache
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"

using namespace adgc;

namespace {

struct Session {
  ObjectId obj;
  RefId partner_ref = kNoRef;  // reference to the partner session
  bool expired = false;
};

}  // namespace

int main() {
  constexpr std::size_t kShards = 6;
  Runtime rt(kShards, sim::fast_config(2024));
  Rng rng(7);

  // Create 60 session pairs on random distinct shards; each pair references
  // one another (a 2-process distributed cycle), and each session is rooted
  // at its home shard's session table.
  std::vector<Session> sessions;
  for (int pair = 0; pair < 60; ++pair) {
    const auto sa = static_cast<ProcessId>(rng.below(kShards));
    auto sb = static_cast<ProcessId>(rng.below(kShards));
    while (sb == sa) sb = static_cast<ProcessId>(rng.below(kShards));
    Session a{{sa, rt.proc(sa).create_object(64)}, kNoRef, false};
    Session b{{sb, rt.proc(sb).create_object(64)}, kNoRef, false};
    rt.proc(sa).add_root(a.obj.seq);
    rt.proc(sb).add_root(b.obj.seq);
    a.partner_ref = rt.link(a.obj, b.obj);
    b.partner_ref = rt.link(b.obj, a.obj);
    sessions.push_back(a);
    sessions.push_back(b);
  }

  std::printf("cache federation: %zu shards, %zu sessions in cross-shard pairs\n",
              kShards, sessions.size());
  rt.run_for(300'000);
  sim::GlobalStats st = sim::global_stats(rt);
  std::printf("t=0.3s  objects=%zu garbage=%zu (all sessions live)\n", st.total_objects,
              st.garbage_objects);

  // Serve traffic + expire sessions over time. Expiring drops the home
  // root; the pair stays mutually referenced → distributed cycle garbage.
  Rng traffic(99);
  std::size_t expired = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    // Random traffic on unexpired sessions (keeps ICs churning).
    for (int i = 0; i < 10; ++i) {
      Session& s = sessions[traffic.below(sessions.size())];
      if (!s.expired) {
        rt.proc(s.obj.owner).invoke(s.obj.seq, s.partner_ref, InvokeEffect::kTouch);
      }
    }
    // Expire ~8% of sessions per epoch — both ends of a pair eventually.
    for (Session& s : sessions) {
      if (!s.expired && traffic.chance(0.08)) {
        rt.proc(s.obj.owner).remove_root(s.obj.seq);
        s.expired = true;
        ++expired;
      }
    }
    rt.run_for(400'000);
  }

  rt.run_for(5'000'000);  // let the collectors drain
  st = sim::global_stats(rt);
  const Metrics m = rt.total_metrics();
  std::printf("t=end   expired=%zu  objects=%zu live=%zu garbage=%zu\n", expired,
              st.total_objects, st.live_objects, st.garbage_objects);
  std::printf("        cycles reclaimed by DCDA: %llu, scions dropped acyclically: %llu\n",
              static_cast<unsigned long long>(m.scions_deleted_cyclic.get()),
              static_cast<unsigned long long>(m.scions_deleted_acyclic.get()));
  std::printf("        detections: %llu started, %llu found, %llu aborted on counters\n",
              static_cast<unsigned long long>(m.detections_started.get()),
              static_cast<unsigned long long>(m.detections_cycle_found.get()),
              static_cast<unsigned long long>(m.detections_aborted_ic.get()));

  if (st.garbage_objects != 0) {
    std::printf("FAILURE: %zu garbage sessions leaked\n", st.garbage_objects);
    return 1;
  }
  std::printf("SUCCESS: every expired cross-shard session pair was reclaimed;\n"
              "         every live session survived.\n");
  return 0;
}
