// Quickstart: build a distributed cycle of garbage and watch the DCDA
// reclaim it — something no acyclic distributed GC can do.
//
//   ./example_quickstart
//
// Four simulated processes hold a ring of objects (the paper's Fig. 3);
// the only local root is dropped, making the whole ring distributed
// garbage. Reference-listing alone would keep it alive forever; the cycle
// detector proves the cycle and one scion deletion unravels everything.
#include <cstdio>

#include "src/common/log.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

int main() {
  using namespace adgc;
  Log::set_level(LogLevel::kInfo);

  Runtime rt(4, sim::fast_config(/*seed=*/7));
  const sim::Fig3 fig = sim::build_fig3(rt);

  std::printf("Built the Fig. 3 graph: a 13-object cycle spanning 4 processes.\n");
  sim::GlobalStats st = sim::global_stats(rt);
  std::printf("  objects=%zu live=%zu garbage=%zu stubs=%zu scions=%zu\n",
              st.total_objects, st.live_objects, st.garbage_objects, st.stubs, st.scions);

  // Let the system run while still rooted: nothing may be collected.
  rt.run_for(300'000);
  st = sim::global_stats(rt);
  std::printf("After 0.3s with the root alive: objects=%zu (nothing collected)\n",
              st.total_objects);

  // Drop the root: the ring is now distributed cyclic garbage.
  rt.proc(0).remove_root(fig.A.seq);
  std::printf("Dropped the root of A_P1; the ring is now garbage.\n");

  rt.run_for(2'000'000);
  st = sim::global_stats(rt);
  std::printf("After 2s of (simulated) background collection:\n");
  std::printf("  objects=%zu live=%zu garbage=%zu stubs=%zu scions=%zu\n",
              st.total_objects, st.live_objects, st.garbage_objects, st.stubs, st.scions);

  const Metrics total = rt.total_metrics();
  std::printf("Protocol activity:\n%s", total.report("  ").c_str());

  if (st.total_objects == 0) {
    std::printf("SUCCESS: the distributed cycle was detected and reclaimed.\n");
    return 0;
  }
  std::printf("FAILURE: %zu objects remain.\n", st.total_objects);
  return 1;
}
