// Mobile agents example — the OBIWAN scenario from the paper's second
// implementation.
//
// Agents hop between nodes. At each hop an agent leaves a "breadcrumb"
// object at the node it left, referencing the agent's new incarnation;
// the incarnation references the breadcrumb back (so the agent can walk
// its own history). When an agent terminates, its itinerary — a chain of
// mutually-referencing objects threaded across every visited node — becomes
// one large distributed cyclic structure of garbage.
//
//   ./example_mobile_agents
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/rt/runtime.h"
#include "src/sim/harness.h"

using namespace adgc;

namespace {

struct Agent {
  ObjectId incarnation;  // current body, rooted at the current node
  int hops = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kNodes = 8;
  Runtime rt(kNodes, sim::fast_config(777));
  Rng rng(12);

  auto spawn = [&](ProcessId home) {
    Agent a;
    a.incarnation = ObjectId{home, rt.proc(home).create_object(128)};
    rt.proc(home).add_root(a.incarnation.seq);
    return a;
  };

  auto hop = [&](Agent& a) {
    auto dst = static_cast<ProcessId>(rng.below(kNodes));
    while (dst == a.incarnation.owner) dst = static_cast<ProcessId>(rng.below(kNodes));
    // New incarnation at the destination, rooted there.
    const ObjectId next{dst, rt.proc(dst).create_object(128)};
    rt.proc(dst).add_root(next.seq);
    // Breadcrumb at the old node: old incarnation becomes the breadcrumb —
    // it is unrooted but references the new incarnation, which references
    // it back. Every hop extends the distributed cycle chain.
    rt.link(a.incarnation, next);
    rt.link(next, a.incarnation);
    rt.proc(a.incarnation.owner).remove_root(a.incarnation.seq);
    a.incarnation = next;
    ++a.hops;
  };

  auto terminate = [&](Agent& a) {
    rt.proc(a.incarnation.owner).remove_root(a.incarnation.seq);
  };

  std::printf("mobile-agent platform: %zu nodes\n", kNodes);
  std::vector<Agent> agents;
  for (int i = 0; i < 12; ++i) agents.push_back(spawn(static_cast<ProcessId>(i % kNodes)));

  // Let them roam.
  for (int round = 0; round < 15; ++round) {
    for (Agent& a : agents) {
      if (rng.chance(0.7)) hop(a);
    }
    rt.run_for(200'000);
  }
  sim::GlobalStats st = sim::global_stats(rt);
  std::printf("after roaming: objects=%zu (itineraries alive behind the agents), "
              "garbage=%zu\n", st.total_objects, st.garbage_objects);

  // Terminate half the agents: their whole itineraries become garbage —
  // chains of 2-cycles threaded across the nodes they visited.
  int terminated = 0;
  for (std::size_t i = 0; i < agents.size(); i += 2) {
    terminate(agents[i]);
    ++terminated;
  }
  std::printf("terminated %d agents; waiting for the collectors...\n", terminated);
  rt.run_for(15'000'000);

  st = sim::global_stats(rt);
  const Metrics m = rt.total_metrics();
  std::printf("final: objects=%zu live=%zu garbage=%zu\n", st.total_objects,
              st.live_objects, st.garbage_objects);
  std::printf("DCDA: %llu cycles reclaimed; acyclic DGC: %llu scions dropped\n",
              static_cast<unsigned long long>(m.scions_deleted_cyclic.get()),
              static_cast<unsigned long long>(m.scions_deleted_acyclic.get()));

  // Every surviving agent's full itinerary must still exist (the live
  // incarnation transitively reaches all its breadcrumbs).
  bool ok = st.garbage_objects == 0;
  for (std::size_t i = 1; i < agents.size(); i += 2) {
    if (!rt.proc(agents[i].incarnation.owner).heap().exists(agents[i].incarnation.seq)) {
      std::printf("FAILURE: live agent %zu lost its incarnation!\n", i);
      ok = false;
    }
  }
  if (!ok) {
    std::printf("FAILURE: %zu garbage objects remain\n", st.garbage_objects);
    return 1;
  }
  std::printf("SUCCESS: dead itineraries fully reclaimed, live agents intact.\n");
  return 0;
}
