// Persistent snapshots & recovery — the paper's snapshots-on-disk (§2.2).
//
// Processes persist every snapshot (bounded retention). We then simulate a
// "restart": a fresh runtime over the same store directory recovers each
// process's summarized view from disk before taking any snapshot of its
// own, and the DCDA can probe immediately. A stale recovered view is safe
// by construction — the invocation-counter rules reject anything the
// mutator touched since.
//
//   ./example_persistent_snapshots [store-dir]
#include <cstdio>
#include <filesystem>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"
#include "src/snapshot/snapshot_store.h"

using namespace adgc;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() / "adgc_example_store";
  std::filesystem::remove_all(dir);

  RuntimeConfig cfg = sim::manual_config(4711);
  cfg.proc.snapshot_dir = dir.string();
  cfg.proc.snapshot_retain = 2;

  RefId candidate = kNoRef;
  {
    Runtime rt(4, cfg);
    const sim::Fig3 fig = sim::build_fig3(rt);
    rt.proc(0).remove_root(fig.A.seq);
    for (ProcessId pid = 0; pid < 4; ++pid) {
      rt.proc(pid).run_lgc();
      rt.proc(pid).take_snapshot();  // persisted to disk
    }
    rt.run_for(50'000);
    candidate = fig.B_to_F;
    std::printf("first run: built Fig. 3, dropped the root, persisted snapshots to\n  %s\n",
                dir.string().c_str());
  }  // runtime destroyed — "crash"

  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  std::printf("on disk after shutdown: %zu snapshot files\n", files);

  // "Restart": fresh runtime, same object graph rebuilt by the application
  // layer (in a real system the persistent store would hold the objects
  // too; here we rebuild and re-drop the root to match the stored view).
  Runtime rt(4, cfg);
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.proc(0).remove_root(fig.A.seq);
  for (ProcessId pid = 0; pid < 4; ++pid) rt.proc(pid).run_lgc();

  int recovered = 0;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    if (rt.proc(pid).recover_summary_from_store()) ++recovered;
  }
  std::printf("after restart: %d/4 processes recovered their summarized view from disk\n",
              recovered);

  // Probe the cycle using the RECOVERED views — no fresh snapshot taken.
  const bool started = rt.proc(1).detector().start_detection(fig.B_to_F, rt.now());
  std::printf("detection from recovered snapshots: %s\n",
              started ? "started" : "refused");
  rt.run_for(300'000);
  sim::settle_manual(rt, 8);

  const sim::GlobalStats st = sim::global_stats(rt);
  std::printf("final: objects=%zu scions=%zu cycles found=%llu\n", st.total_objects,
              st.scions,
              static_cast<unsigned long long>(
                  rt.total_metrics().detections_cycle_found.get()));
  std::filesystem::remove_all(dir);

  if (recovered == 4 && st.total_objects == 0) {
    std::printf("SUCCESS: recovered views drove a full collection after restart.\n");
    return 0;
  }
  std::printf("FAILURE\n");
  (void)candidate;
  return 1;
}
