// Fault-injection demo — the paper's "tolerates message loss" claim, live.
//
// A distributed garbage cycle is created under a badly degraded network
// (heavy loss + duplication), then the network degrades to a full partition
// and heals. The protocol never blocks, never corrupts, and converges as
// soon as the network allows.
//
//   ./example_fault_injection
#include <cstdio>

#include "src/rt/runtime.h"
#include "src/sim/harness.h"
#include "src/sim/scenarios.h"

using namespace adgc;

namespace {

void report(Runtime& rt, const char* phase) {
  const sim::GlobalStats st = sim::global_stats(rt);
  const Metrics m = rt.total_metrics();
  std::printf("%-28s objects=%-3zu scions=%-3zu lost=%-5llu dup=%-4llu timeouts=%llu\n",
              phase, st.total_objects, st.scions,
              static_cast<unsigned long long>(m.messages_lost.get()),
              static_cast<unsigned long long>(m.messages_duplicated.get()),
              static_cast<unsigned long long>(m.detections_timed_out.get()));
}

}  // namespace

int main() {
  RuntimeConfig cfg = sim::fast_config(31337);
  cfg.net.loss_probability = 0.25;       // every 4th message vanishes
  cfg.net.duplicate_probability = 0.10;  // and some arrive twice
  Runtime rt(4, cfg);

  std::printf("network: 25%% loss, 10%% duplication\n\n");
  const sim::Fig3 fig = sim::build_fig3(rt);
  rt.run_for(500'000);
  report(rt, "built (rooted)");

  rt.proc(0).remove_root(fig.A.seq);
  report(rt, "root dropped");

  rt.run_for(3'000'000);
  report(rt, "t+3s (lossy)");

  // Total partition for a while: nothing can progress across it.
  for (ProcessId a = 0; a < 4; ++a) {
    for (ProcessId b = 0; b < 4; ++b) {
      if (a != b) rt.network().set_link_blocked(a, b, true);
    }
  }
  rt.run_for(3'000'000);
  report(rt, "t+6s (partitioned)");

  for (ProcessId a = 0; a < 4; ++a) {
    for (ProcessId b = 0; b < 4; ++b) {
      if (a != b) rt.network().set_link_blocked(a, b, false);
    }
  }
  std::printf("partition healed; loss still 25%%\n");
  rt.run_for(30'000'000);
  report(rt, "t+36s (healed, lossy)");

  const sim::GlobalStats st = sim::global_stats(rt);
  if (st.total_objects == 0 && st.scions == 0) {
    std::printf("\nSUCCESS: the cycle was reclaimed despite loss, duplication and a\n"
                "partition — faults only delayed collection, never corrupted it.\n");
    return 0;
  }
  std::printf("\nFAILURE: %zu objects / %zu scions remain\n", st.total_objects, st.scions);
  return 1;
}
