// libFuzzer harness over the batch codec: the nested-length decoder that
// turns one coalesced wire payload back into individual control messages.
// Contract under fuzzing: arbitrary bytes either decode to a BatchMsg whose
// items ALL decode (and the whole thing re-encodes byte-identically), or the
// first defect throws DecodeError and poisons the entire batch — a batch is
// applied all-or-nothing, never partially. validate_batch_payload (the
// frame-layer structural pre-check) must never accept a payload the full
// decoder then rejects for structural reasons: anything it passes has inner
// lengths that exactly tile the buffer.
//
// Interesting shapes the corpus seeds cover and the fuzzer mutates from:
// truncated inner lengths, inner-kind confusion (an item whose first byte
// lies about its tag), nested batches, and CRC-slice corruption carried in
// from the frame layer.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/net/frame.h"
#include "src/net/message.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::byte> bytes(reinterpret_cast<const std::byte*>(data), size);
  const bool structurally_ok = adgc::validate_batch_payload(bytes);
  try {
    const adgc::MessagePayload m = adgc::decode_message(bytes);
    if (const auto* batch = std::get_if<adgc::BatchMsg>(&m)) {
      // Structural validation is a PRE-check of the same walk; a payload
      // that decoded as a batch must have passed it.
      if (!structurally_ok) __builtin_trap();
      try {
        const std::vector<adgc::MessagePayload> items =
            adgc::decode_batch_items(*batch);
        for (const adgc::MessagePayload& item : items) {
          // No nesting may survive decode, and every item must re-encode.
          if (std::holds_alternative<adgc::BatchMsg>(item)) __builtin_trap();
          (void)adgc::encode_message(item);
        }
      } catch (const adgc::DecodeError&) {
        // Item-level corruption: poisons the whole batch. Expected.
      }
      // The container itself always re-encodes to the input bytes.
      const std::vector<std::byte> re = adgc::encode_message(m);
      if (re.size() != bytes.size()) __builtin_trap();
      for (std::size_t i = 0; i < re.size(); ++i) {
        if (re[i] != bytes[i]) __builtin_trap();
      }
    }
  } catch (const adgc::DecodeError&) {
    // The expected outcome for almost all inputs. validate_batch_payload
    // may still be true here: it checks structure only, not item contents
    // (a structurally sound batch with a garbage item decodes as BatchMsg
    // but its ITEMS fail) — nothing to assert.
  }
  return 0;
}
