// libFuzzer harness over the snapshot deserializers (the bytes a process
// trusts during crash recovery). Contract: any input either deserializes to
// a snapshot — which must then re-serialize without throwing — or throws
// DecodeError. See fuzz_message_decode.cpp for the build story.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/snapshot/serializer.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::byte> bytes(reinterpret_cast<const std::byte*>(data), size);
  static const adgc::BinarySerializer binary;
  static const adgc::NaiveSerializer naive;
  try {
    const adgc::SnapshotData snap = binary.deserialize(bytes);
    (void)binary.serialize(snap);
  } catch (const adgc::DecodeError&) {
  }
  try {
    const adgc::SnapshotData snap = naive.deserialize(bytes);
    (void)naive.serialize(snap);
  } catch (const adgc::DecodeError&) {
  }
  return 0;
}
