// libFuzzer harness over the wire-message codec (the ByteReader path every
// network byte takes before reaching a Process). The contract under fuzzing:
// any input either decodes to a well-formed payload — which must then
// re-encode without throwing — or throws DecodeError. Crashes, hangs,
// sanitizer reports and absurd allocations are bugs.
//
// Built as a real libFuzzer target under Clang (-fsanitize=fuzzer); under
// other compilers the same body is linked against the corpus replay driver
// (replay_driver.cpp) so the harness logic runs everywhere.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/net/message.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::byte> bytes(reinterpret_cast<const std::byte*>(data), size);
  try {
    const adgc::MessagePayload m = adgc::decode_message(bytes);
    // Decoded → the payload must be internally consistent enough to encode.
    (void)adgc::encode_message(m);
  } catch (const adgc::DecodeError&) {
    // The expected outcome for almost all inputs.
  }
  return 0;
}
