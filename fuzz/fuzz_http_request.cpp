// libFuzzer harness over the admin endpoint's HTTP request parser — the
// only parser that faces arbitrary bytes from anything that can reach the
// admin TCP port. Contract under fuzzing: parse_http_request is total
// (never crashes, never reads out of bounds), enforces its documented
// limits, and is prefix-stable: an accepted head re-parses identically from
// exactly its consumed bytes, and every shorter prefix asks for more input.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/obs/admin_http.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace adgc::obs;
  const std::string_view buf(reinterpret_cast<const char*>(data), size);

  HttpRequest req;
  std::size_t consumed = 0;
  const HttpParse r = parse_http_request(buf, &req, &consumed);

  if (r == HttpParse::kNeedMore) {
    // The buffering cap must hold: oversized heads are rejected, not queued.
    if (buf.size() > kMaxRequestBytes) __builtin_trap();
    return 0;
  }
  if (r != HttpParse::kOk) return 0;

  if (consumed == 0 || consumed > buf.size()) __builtin_trap();
  if (consumed > kMaxRequestBytes) __builtin_trap();
  if (req.method.empty() || req.method.size() > kMaxMethodBytes) __builtin_trap();
  if (req.target.empty() || req.target.size() > kMaxTargetBytes) __builtin_trap();
  if (req.target[0] != '/') __builtin_trap();
  if (req.minor_version != 0 && req.minor_version != 1) __builtin_trap();

  // Re-parsing exactly the consumed head must reproduce the request.
  HttpRequest again;
  std::size_t consumed2 = 0;
  if (parse_http_request(buf.substr(0, consumed), &again, &consumed2) !=
      HttpParse::kOk) {
    __builtin_trap();
  }
  if (consumed2 != consumed || again.method != req.method ||
      again.target != req.target || again.minor_version != req.minor_version) {
    __builtin_trap();
  }

  // Any strict prefix of the head lacks the terminating blank line.
  for (std::size_t cut : {consumed - 1, consumed / 2}) {
    if (parse_http_request(buf.substr(0, cut), nullptr, nullptr) !=
        HttpParse::kNeedMore) {
      __builtin_trap();
    }
  }

  // Response generation over attacker-influenced strings is total.
  (void)http_response(200, "text/plain; charset=utf-8", req.target);
  return 0;
}
