// Seed-corpus generator: writes one file per representative wire message
// (every message kind the codec knows) plus a serialized snapshot into the
// directory given as argv[1]. The checked-in corpus under fuzz/corpus/ was
// produced by this tool; regenerate after changing the wire format.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/snapshot/serializer.h"

using namespace adgc;

namespace {

void write_file(const std::filesystem::path& dir, const std::string& name,
                const std::vector<std::byte>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s (%zu bytes)\n", name.c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  std::filesystem::create_directories(dir);

  InvokeMsg inv;
  inv.ref = make_ref_id(1, 2);
  inv.ic = 3;
  inv.target = {2, 4};
  inv.caller = {1, 9};
  inv.effect = InvokeEffect::kStoreArgs;
  inv.args = {{make_ref_id(1, 3), {3, 8}}};
  inv.payload.assign(48, std::byte{7});
  inv.want_reply = true;
  inv.call_id = 77;
  write_file(dir, "invoke", encode_message(inv));

  ReplyMsg rep;
  rep.ref = make_ref_id(4, 1);
  rep.ic = 17;
  rep.call_id = 77;
  write_file(dir, "reply", encode_message(rep));

  NewSetStubsMsg nss;
  nss.export_seq = 5;
  nss.live = {make_ref_id(0, 1), make_ref_id(0, 2), make_ref_id(0, 3)};
  write_file(dir, "new_set_stubs", encode_message(nss));

  AddScionMsg add;
  add.ref = make_ref_id(2, 2);
  add.target_seq = 11;
  add.holder = 6;
  add.handshake = 41;
  write_file(dir, "add_scion", encode_message(add));

  AddScionAckMsg ack;
  ack.ref = make_ref_id(2, 2);
  ack.handshake = 41;
  write_file(dir, "add_scion_ack", encode_message(ack));

  CdmMsg cdm;
  cdm.detection = {1, 2};
  cdm.candidate = make_ref_id(1, 1);
  cdm.via = make_ref_id(2, 2);
  cdm.via_ic = 9;
  cdm.hops = 3;
  cdm.source = {{make_ref_id(1, 1), 0}, {make_ref_id(3, 3), 1}};
  cdm.target = {{make_ref_id(2, 2), 0}};
  write_file(dir, "cdm", encode_message(cdm));

  BacktraceRequestMsg btq;
  btq.trace_id = 9;
  btq.req_id = 10;
  btq.subject_ref = make_ref_id(0, 5);
  btq.visited = {make_ref_id(0, 5), make_ref_id(1, 6)};
  write_file(dir, "backtrace_request", encode_message(btq));

  BacktraceReplyMsg btr;
  btr.trace_id = 9;
  btr.req_id = 10;
  btr.reachable = true;
  write_file(dir, "backtrace_reply", encode_message(btr));

  GtStartMsg gst;
  gst.epoch = 2;
  write_file(dir, "gt_start", encode_message(gst));

  GtStatusMsg gs;
  gs.epoch = 2;
  gs.marks_sent = 100;
  write_file(dir, "gt_status", encode_message(gs));

  SnapshotData snap;
  snap.pid = 1;
  for (ObjectSeq i = 1; i <= 6; ++i) {
    SnapshotData::Obj o;
    o.seq = i;
    if (i > 1) o.local_fields.push_back(i - 1);
    o.payload.assign(4, std::byte{static_cast<unsigned char>(i)});
    snap.objects.push_back(std::move(o));
  }
  snap.stubs.push_back({make_ref_id(1, 1), {2, 2}, 3});
  snap.scions.push_back({make_ref_id(2, 1), 3, 4, 5});
  write_file(dir, "snapshot_binary", BinarySerializer{}.serialize(snap));
  write_file(dir, "snapshot_naive", NaiveSerializer{}.serialize(snap));

  // TCP frame seeds. fuzz_frame_decode interprets the FIRST byte as the
  // feed-chunk selector, so every frame seed is prefixed with one byte
  // (0x0c → 4096-byte chunks ≈ one-shot; 0x00 → byte-at-a-time).
  const auto frame_seed = [](std::uint8_t chunk_sel, std::vector<std::byte> frame) {
    std::vector<std::byte> seed;
    seed.reserve(frame.size() + 1);
    seed.push_back(std::byte{chunk_sel});
    seed.insert(seed.end(), frame.begin(), frame.end());
    return seed;
  };
  write_file(dir, "frame_hello", frame_seed(0x0c, encode_hello_frame(3, 2)));
  {
    Envelope env;
    env.src = 1;
    env.dst = 2;
    env.src_inc = 1;
    env.dst_inc = kUnknownIncarnation;
    env.bytes = encode_message(cdm);
    write_file(dir, "frame_data_cdm", frame_seed(0x0c, encode_data_frame(env)));
    env.bytes = encode_message(inv);
    write_file(dir, "frame_data_invoke", frame_seed(0x00, encode_data_frame(env)));
  }
  {
    // Two back-to-back frames in one stream, fed in 16-byte chunks.
    auto stream = encode_hello_frame(5, 0);
    Envelope env;
    env.src = 5;
    env.dst = 0;
    env.bytes = encode_message(rep);
    const auto second = encode_data_frame(env);
    stream.insert(stream.end(), second.begin(), second.end());
    write_file(dir, "frame_stream_pair", frame_seed(0x04, std::move(stream)));
  }
  {
    // A corrupted frame (flipped payload bit → CRC mismatch): seeds the
    // rejection path.
    Envelope env;
    env.src = 7;
    env.dst = 8;
    env.bytes = encode_message(nss);
    auto bad = encode_data_frame(env);
    bad.back() ^= std::byte{0x01};
    write_file(dir, "frame_bad_crc", frame_seed(0x0c, std::move(bad)));
  }

  // Batch seeds: a healthy multi-kind batch, a singleton, and the defect
  // shapes fuzz_batch_decode cares about (truncated inner length, item-kind
  // confusion, nesting) plus a batch riding a TCP frame with and without a
  // CRC-slice bit flip.
  {
    BatchMsg batch;
    batch.items.push_back(encode_message(cdm));
    batch.items.push_back(encode_message(nss));
    batch.items.push_back(encode_message(ack));
    write_file(dir, "batch_mixed", encode_message(batch));

    BatchMsg one;
    one.items.push_back(encode_message(ack));
    write_file(dir, "batch_singleton", encode_message(one));

    auto truncated = encode_message(batch);
    truncated.resize(truncated.size() - 7);  // cuts into the last item
    write_file(dir, "batch_truncated_item", truncated);

    auto confused = encode_message(batch);
    confused[9] = std::byte{0xEE};  // first item's tag byte: unknown kind
    write_file(dir, "batch_kind_confusion", confused);

    auto inflated = encode_message(batch);
    inflated[5] = std::byte{0xff};  // first item's length: larger than buffer
    inflated[6] = std::byte{0xff};
    write_file(dir, "batch_bad_inner_length", inflated);

    BatchMsg nested;
    nested.items.push_back(encode_message(one));
    write_file(dir, "batch_nested", encode_message(nested));

    Envelope env;
    env.src = 1;
    env.dst = 2;
    env.src_inc = 1;
    env.dst_inc = kUnknownIncarnation;
    env.bytes = encode_message(batch);
    write_file(dir, "frame_batch", frame_seed(0x0c, encode_data_frame(env)));
    auto bad = encode_data_frame(env);
    bad[bad.size() / 2] ^= std::byte{0x10};
    write_file(dir, "frame_batch_corrupt", frame_seed(0x0c, std::move(bad)));
  }

  // Admin HTTP request seeds (fuzz_http_request): the requests the endpoint
  // actually serves, both line terminators, and the rejection shapes.
  const auto text_seed = [](const char* s) {
    const std::string_view sv(s);
    std::vector<std::byte> bytes(sv.size());
    std::memcpy(bytes.data(), sv.data(), sv.size());
    return bytes;
  };
  write_file(dir, "http_get_metrics",
             text_seed("GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n"));
  write_file(dir, "http_get_healthz_11",
             text_seed("GET /healthz HTTP/1.1\r\nAccept: */*\r\n\r\n"));
  write_file(dir, "http_get_tracez_bare_lf", text_seed("GET /tracez HTTP/1.0\n\n"));
  write_file(dir, "http_post_rejected",
             text_seed("POST /metrics HTTP/1.0\r\nContent-Length: 4\r\n\r\nbody"));
  write_file(dir, "http_bad_version", text_seed("GET /metrics HTTP/2.0\r\n\r\n"));
  write_file(dir, "http_truncated_head", text_seed("GET /metrics HTT"));

  std::printf("corpus written to %s\n", dir.string().c_str());
  return 0;
}
