// libFuzzer harness over the TCP frame decoder — the first parser any byte
// from the network hits. Contract under fuzzing: arbitrary input either
// yields well-formed frames (which must re-encode and, for data frames,
// behave like any payload handed to the message layer) or poisons the
// decoder with a reported error. Crashes, hangs, unbounded allocations and
// sanitizer reports are bugs. After poisoning, next() must stay silent.
//
// The input's first byte selects a chunking pattern so the fuzzer exercises
// the incremental-feed state machine (header split across recv() calls,
// payload trickling in byte by byte), not just one-shot decodes.
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::size_t chunk = std::size_t{1} << (data[0] % 13);  // 1..4096 bytes
  const std::span<const std::byte> bytes(reinterpret_cast<const std::byte*>(data + 1),
                                         size - 1);

  adgc::FrameDecoder dec;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    dec.feed(bytes.subspan(off, std::min(chunk, bytes.size() - off)));
    while (auto frame = dec.next()) {
      // A decoded frame must re-encode cleanly (header fields round-trip).
      (void)adgc::encode_frame(*frame);
      (void)adgc::peek_message_tag(frame->payload);
      (void)adgc::is_cdm_payload(frame->payload);
      (void)adgc::is_new_set_stubs_payload(frame->payload);
    }
    if (dec.failed()) {
      // Poisoned: the error must be described, and the decoder must stay
      // dead no matter what else is fed.
      (void)dec.error_detail();
      dec.feed(bytes.subspan(0, std::min<std::size_t>(bytes.size(), 64)));
      if (dec.next().has_value()) __builtin_trap();
      break;
    }
  }
  return 0;
}
