// Plain-main corpus replay driver: feeds every file passed on the command
// line (or every regular file inside a directory argument) through
// LLVMFuzzerTestOneInput. This is what non-Clang builds — which have no
// libFuzzer — link the fuzz harness bodies against, and what CI uses to
// regression-replay the checked-in seed corpus under the sanitizers.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.string().c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (replay_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (replay_file(arg) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("replayed %zu corpus inputs, no crash\n", replayed);
  return 0;
}
